// Command d2bench converts `go test -bench` text output into a structured
// JSON record (BENCH_<n>.json in this repo), optionally merging a baseline
// run to compute per-benchmark speedups. It reads benchmark output from the
// files given as arguments, or from stdin when none are given.
//
// Usage:
//
//	go test -bench . ./... | d2bench -o BENCH_1.json
//	d2bench -before /tmp/bench_before.txt -o BENCH_1.json /tmp/bench_after.txt
//	d2bench -metrics /tmp/bench_metrics.json -o BENCH_3.json /tmp/bench.txt
//
// The -metrics flag embeds a metrics snapshot (the obs.Snapshot JSON a
// benchmark writes when D2_BENCH_METRICS is set) so a perf record carries
// its RPC and byte counts, not just wall-clock numbers. The -trace flag
// likewise embeds the sampled request-trace JSON a benchmark writes when
// D2_BENCH_TRACE is set (Chrome trace-event form, Perfetto-loadable), and
// -stream embeds the streaming-read report (TTFB, sustained throughput,
// window trajectory) BenchmarkStreamRead writes when D2_BENCH_STREAM is
// set, and -health embeds the final cluster-health summary a benchmark
// writes when D2_BENCH_HEALTH is set.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Metrics holds every other "<value> <unit>" pair on the line:
	// B/op, allocs/op, MB/s, and custom b.ReportMetric units.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted JSON document.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPUModel   string      `json:"cpu,omitempty"`
	CPUs       int         `json:"cpus"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Baseline   []Benchmark `json:"baseline,omitempty"`
	// Speedup maps benchmark name to baseline ns/op divided by current
	// ns/op (> 1 means the current run is faster).
	Speedup map[string]float64 `json:"speedup,omitempty"`
	// MetricsSnapshot is an embedded obs.Snapshot captured during the run
	// (see -metrics).
	MetricsSnapshot json.RawMessage `json:"metrics_snapshot,omitempty"`
	// TraceSnapshot is embedded Chrome trace-event JSON captured during the
	// run (see -trace).
	TraceSnapshot json.RawMessage `json:"trace_snapshot,omitempty"`
	// Stream is the streaming-read report (ttfb_ms, sustained_mbps,
	// window_trajectory, ...) a benchmark writes when D2_BENCH_STREAM is
	// set (see -stream).
	Stream json.RawMessage `json:"stream,omitempty"`
	// Health is the final cluster-health summary (history.Status plus
	// derived rates) a benchmark writes when D2_BENCH_HEALTH is set (see
	// -health).
	Health json.RawMessage `json:"health,omitempty"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "d2bench:", err)
		os.Exit(1)
	}
}

func run() error {
	before := flag.String("before", "", "baseline `go test -bench` output to diff against")
	metrics := flag.String("metrics", "", "metrics snapshot JSON to embed in the report")
	trace := flag.String("trace", "", "request-trace JSON (D2_BENCH_TRACE output) to embed in the report")
	stream := flag.String("stream", "", "streaming-read report JSON (D2_BENCH_STREAM output) to embed")
	health := flag.String("health", "", "cluster-health summary JSON (D2_BENCH_HEALTH output) to embed")
	out := flag.String("o", "", "output JSON path (default stdout)")
	flag.Parse()

	rep := &Report{CPUs: runtime.NumCPU()}
	if flag.NArg() == 0 {
		if err := parseInto(rep, os.Stdin, true); err != nil {
			return err
		}
	} else {
		for _, path := range flag.Args() {
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			err = parseInto(rep, f, true)
			f.Close()
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
		}
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}

	if *before != "" {
		f, err := os.Open(*before)
		if err != nil {
			return err
		}
		base := &Report{}
		err = parseInto(base, f, false)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", *before, err)
		}
		rep.Baseline = base.Benchmarks
		rep.Speedup = make(map[string]float64)
		byName := make(map[string]Benchmark, len(base.Benchmarks))
		for _, b := range base.Benchmarks {
			byName[b.Name] = b
		}
		for _, b := range rep.Benchmarks {
			if prev, ok := byName[b.Name]; ok && b.NsPerOp > 0 {
				rep.Speedup[b.Name] = prev.NsPerOp / b.NsPerOp
			}
		}
	}

	if *metrics != "" {
		raw, err := os.ReadFile(*metrics)
		if err != nil {
			return err
		}
		if !json.Valid(raw) {
			return fmt.Errorf("%s: not valid JSON", *metrics)
		}
		rep.MetricsSnapshot = json.RawMessage(raw)
	}

	if *trace != "" {
		raw, err := os.ReadFile(*trace)
		if err != nil {
			return err
		}
		if !json.Valid(raw) {
			return fmt.Errorf("%s: not valid JSON", *trace)
		}
		rep.TraceSnapshot = json.RawMessage(raw)
	}

	if *stream != "" {
		raw, err := os.ReadFile(*stream)
		if err != nil {
			return err
		}
		if !json.Valid(raw) {
			return fmt.Errorf("%s: not valid JSON", *stream)
		}
		rep.Stream = json.RawMessage(raw)
	}

	if *health != "" {
		raw, err := os.ReadFile(*health)
		if err != nil {
			return err
		}
		if !json.Valid(raw) {
			return fmt.Errorf("%s: not valid JSON", *health)
		}
		rep.Health = json.RawMessage(raw)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(*out, enc, 0o644)
}

// procSuffix strips the -GOMAXPROCS suffix go's benchmark runner appends
// when GOMAXPROCS > 1, so runs from different machines diff by name.
var procSuffix = regexp.MustCompile(`-\d+$`)

// parseInto scans `go test -bench` text, appending benchmark lines to the
// report. Header lines (goos/goarch/cpu) fill the metadata when meta is set.
func parseInto(rep *Report, r io.Reader, meta bool) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			if meta {
				rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			}
			continue
		case strings.HasPrefix(line, "goarch:"):
			if meta {
				rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			}
			continue
		case strings.HasPrefix(line, "cpu:"):
			if meta {
				rep.CPUModel = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			}
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue // result lines are name, N, then value/unit pairs
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{
			Name:       procSuffix.ReplaceAllString(fields[0], ""),
			Iterations: iters,
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				b.NsPerOp = v
				continue
			}
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	return sc.Err()
}
