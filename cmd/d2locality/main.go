// Command d2locality reproduces the paper's workload locality analyses:
// Table 1 (workload summary), Figure 3 (mean nodes accessed per user-hour
// under traditional / ordered / lower-bound), and Table 2 (objects and
// nodes per task).
//
// Usage:
//
//	d2locality [-scale small|medium|full] [-workers N] [-table1] [-fig3] [-table2]
//
// With no selection flags, everything runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/defragdht/d2/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "d2locality:", err)
		os.Exit(1)
	}
}

func run() error {
	scaleName := flag.String("scale", "medium", "experiment scale: small, medium, or full")
	workers := flag.Int("workers", 0, "parallel analysis workers (0 = one per core)")
	table1 := flag.Bool("table1", false, "print Table 1 (workload summary)")
	fig3 := flag.Bool("fig3", false, "print Figure 3 (locality scenarios)")
	table2 := flag.Bool("table2", false, "print Table 2 (nodes per task)")
	flag.Parse()

	scale, err := experiments.ScaleByName(*scaleName)
	if err != nil {
		return err
	}
	scale.Workers = *workers
	all := !*table1 && !*fig3 && !*table2
	if *table1 || all {
		fmt.Println(experiments.Table1(scale))
	}
	if *fig3 || all {
		fmt.Println(experiments.RenderFig3(experiments.Fig3(scale)))
	}
	if *table2 || all {
		fmt.Println(experiments.RenderTable2(experiments.Table2(scale)))
	}
	return nil
}
