// Command d2sim runs the event-driven simulations of the paper's
// availability and load-balance evaluations: Figure 7 (task
// unavailability), Figure 8 (per-user unavailability), Figure 16/17 (load
// imbalance over time on Harvard and Webcache), Table 3 (daily churn),
// Table 4 (write vs migration traffic), and the replica-count and
// block-pointer ablations.
//
// Usage:
//
//	d2sim [-scale small|medium|full] [-workers N] [-fig7] [-fig8] [-fig16]
//	      [-fig17] [-table3] [-table4] [-ablation-pointers] [-ablation-replicas]
//	      [-trace out.json]
//
// With no selection flags, everything runs (minutes at medium scale).
// -trace runs the D2 system over the Harvard workload with a span sink
// attached and writes the migration timeline (one span per block transfer,
// in simulated time) as Chrome trace-event JSON, loadable in Perfetto.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/defragdht/d2/internal/experiments"
	"github.com/defragdht/d2/internal/obs/tracing"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "d2sim:", err)
		os.Exit(1)
	}
}

func run() error {
	scaleName := flag.String("scale", "medium", "experiment scale: small, medium, or full")
	workers := flag.Int("workers", 0, "parallel simulation workers (0 = one per core)")
	fig7 := flag.Bool("fig7", false, "Figure 7: task unavailability vs inter")
	fig8 := flag.Bool("fig8", false, "Figure 8: per-user unavailability, ranked")
	fig16 := flag.Bool("fig16", false, "Figure 16: load imbalance over time (Harvard)")
	fig17 := flag.Bool("fig17", false, "Figure 17: load imbalance over time (Webcache)")
	table3 := flag.Bool("table3", false, "Table 3: daily churn ratios")
	table4 := flag.Bool("table4", false, "Table 4: write vs migration traffic")
	ablPtr := flag.Bool("ablation-pointers", false, "ablation: block pointers on/off")
	ablRep := flag.Bool("ablation-replicas", false, "ablation: replicas r=3 vs r=4")
	traceOut := flag.String("trace", "", "capture the D2/Harvard migration timeline as Chrome trace-event JSON")
	flag.Parse()

	scale, err := experiments.ScaleByName(*scaleName)
	if err != nil {
		return err
	}
	scale.Workers = *workers
	if *traceOut != "" {
		return runTraceCapture(scale, *traceOut)
	}
	all := !*fig7 && !*fig8 && !*fig16 && !*fig17 && !*table3 && !*table4 && !*ablPtr && !*ablRep
	if *fig7 || all {
		fmt.Println(experiments.RenderFig7(experiments.Fig7(scale)))
	}
	if *fig8 || all {
		fmt.Println(experiments.RenderFig8(experiments.Fig8(scale)))
	}
	if *fig16 || all {
		fmt.Println(experiments.RenderLBSeries(
			"Figure 16: Load imbalance over time, Harvard (normalized std-dev)",
			experiments.Fig16(scale)))
	}
	if *fig17 || all {
		fmt.Println(experiments.RenderLBSeries(
			"Figure 17: Load imbalance over time, Webcache (normalized std-dev)",
			experiments.Fig17(scale)))
	}
	if *table3 || all {
		fmt.Println(experiments.Table3(scale))
	}
	if *table4 || all {
		fmt.Println(experiments.Table4(scale))
	}
	if *ablPtr || all {
		fmt.Println(experiments.AblationPointers(scale))
	}
	if *ablRep || all {
		fmt.Println(experiments.AblationReplicas(scale))
	}
	return nil
}

// runTraceCapture simulates the D2 system on the Harvard workload with a
// span sink attached and writes the captured block-transfer spans as
// Chrome trace-event JSON (open the file in ui.perfetto.dev).
func runTraceCapture(scale experiments.Scale, out string) error {
	sink := tracing.NewSink(1 << 16)
	experiments.TraceMigration(scale, sink)
	spans := sink.Spans()
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := tracing.WriteChromeTrace(f, spans); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("captured %d transfer spans (%d total; ring keeps the most recent) to %s\n",
		len(spans), sink.Total(), out)
	return nil
}
