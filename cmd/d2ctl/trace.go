package main

import (
	"context"
	"fmt"
	"os"

	d2 "github.com/defragdht/d2"
	"github.com/defragdht/d2/internal/obs/tracing"
)

// runTrace reads path through the volume under a force-sampled trace,
// scrapes every ring member for that trace's spans, and prints the
// assembled cross-node span tree. When export is non-empty it also writes
// Chrome trace-event JSON there, loadable at ui.perfetto.dev.
func runTrace(ctx context.Context, client *d2.Client, vol *d2.Volume, path, export string) error {
	tctx, root := client.StartTrace(ctx, "d2ctl.trace")
	root.Annotate("path", path)
	data, rerr := vol.ReadFile(tctx, path)
	root.EndErr(rerr)
	if rerr != nil {
		return fmt.Errorf("read %s: %w", path, rerr)
	}
	trace := root.TraceID()

	spans, err := client.FetchClusterTrace(ctx, trace)
	if err != nil {
		return fmt.Errorf("fetch trace %s: %w", tracing.TraceIDString(trace), err)
	}
	fmt.Printf("read %s: %d bytes\ntrace %s: %d spans across %d nodes\n\n",
		path, len(data), tracing.TraceIDString(trace), len(spans), tracing.NodeCount(spans))
	if err := tracing.WriteTree(os.Stdout, spans); err != nil {
		return err
	}
	if export != "" {
		f, err := os.Create(export)
		if err != nil {
			return err
		}
		if err := tracing.WriteChromeTrace(f, spans); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nwrote Chrome trace-event JSON to %s (open in ui.perfetto.dev)\n", export)
	}
	return nil
}
