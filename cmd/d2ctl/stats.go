package main

import (
	"context"
	"fmt"
	"sort"
	"strings"

	d2 "github.com/defragdht/d2"
	"github.com/defragdht/d2/internal/obs"
	"github.com/defragdht/d2/internal/stats"
)

// runStats scrapes every ring member (StatsReq over the DHT transport),
// merges the snapshots with the local client's own, and prints a
// cluster-wide summary: totals, the §10 load-imbalance metric, the lookup
// cache hit rate, and per-RPC latency percentiles.
func runStats(ctx context.Context, client *d2.Client) error {
	nodes, err := client.ClusterStats(ctx)
	if err != nil {
		return err
	}
	if len(nodes) == 0 {
		return fmt.Errorf("no reachable nodes")
	}

	snaps := make([]obs.Snapshot, 0, len(nodes)+1)
	var stored, blocks int64
	loads := make([]float64, 0, len(nodes))
	for _, n := range nodes {
		snaps = append(snaps, n.Snapshot)
		stored += n.StoredBytes
		blocks += n.Blocks
		loads = append(loads, float64(n.RespBytes))
	}
	// The client's own registry carries the lookup-cache counters (§5
	// caching happens client-side) and its per-RPC latency view.
	snaps = append(snaps, client.MetricsSnapshot())
	merged := obs.MergeAll(snaps...)

	fmt.Printf("cluster: %d nodes, %d blocks, %s stored\n",
		len(nodes), blocks, fmtBytes(stored))
	fmt.Printf("load imbalance (stddev/mean of primary load, §10): %.3f\n",
		stats.NormStdDev(loads))

	// One extra scrape builds the cluster-level census view (§5 locality
	// and frag ratio are cross-node properties a summed gauge can't give).
	if _, cc, err := client.ClusterCensus(ctx); err == nil && cc != nil && cc.TotalFiles > 0 {
		fmt.Printf("placement census: %.3f runs/file, locality %.3f, %d files, %d stale pointers (%s)\n",
			cc.FragRatio, cc.Locality, cc.TotalFiles, cc.StalePointers, cc.State)
	}

	hits := merged.Counters["d2_client_cache_hits_total"]
	misses := merged.Counters["d2_client_cache_misses_total"]
	if hits+misses > 0 {
		fmt.Printf("lookup cache: %d hits, %d misses (%.1f%% hit rate)\n",
			hits, misses, 100*float64(hits)/float64(hits+misses))
	}

	printCounterGroup(merged, "d2_rpc_server_total", "rpcs served")
	printCounterGroup(merged, "d2_node_", "node activity")
	printCounterGroup(merged, "d2_tcp_", "tcp transport")
	printCounterGroup(merged, "d2_stream_", "streaming reads")
	printCounterGroup(merged, "d2_store_", "durable store")
	printGaugeGroup(merged, "connection pools / streams", "d2_tcp_pool_", "d2_stream_")
	printGaugeGroup(merged, "durable store", "d2_store_")
	printGaugeGroup(merged, "placement census (summed across nodes)", "d2_census_")
	printLatencies(merged)
	return nil
}

// runTop prints a per-node hotspot table sorted by primary load.
func runTop(ctx context.Context, client *d2.Client) error {
	nodes, err := client.ClusterStats(ctx)
	if err != nil {
		return err
	}
	if len(nodes) == 0 {
		return fmt.Errorf("no reachable nodes")
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].RespBytes > nodes[j].RespBytes })

	fmt.Printf("%-22s %-10s %8s %10s %10s %10s %10s %6s %9s %9s %8s\n",
		"ADDR", "ID", "BLOCKS", "STORED", "PRIMARY", "SERVED", "REDIRECTS", "POOL", "FAILFAST", "WAL", "LOCALITY")
	for _, n := range nodes {
		var served uint64
		for name, v := range n.Snapshot.Counters {
			if strings.HasPrefix(name, "d2_rpc_server_total{") {
				served += v
			}
		}
		// In-memory nodes carry no d2_store_ series; the column reads 0B.
		wal := fmtBytes(n.Snapshot.Gauges["d2_store_wal_size_bytes"])
		// Per-node locality from the census gauges: owner switches a
		// sequential scan of this node's files would incur, per file
		// (0.00 = every local file is one contiguous run).
		locality := "-"
		if files := n.Snapshot.Gauges["d2_census_files"]; files > 0 {
			sw := n.Snapshot.Gauges["d2_census_owner_switches"]
			locality = fmt.Sprintf("%.2f", float64(sw)/float64(files))
		}
		fmt.Printf("%-22s %-10s %8d %10s %10s %10d %10d %6d %9d %9s %8s\n",
			n.Self.Addr, n.Self.ID.Short(), n.Blocks,
			fmtBytes(n.StoredBytes), fmtBytes(n.RespBytes),
			served, n.Snapshot.Counters["d2_node_ptr_redirects_total"],
			n.Snapshot.Gauges["d2_tcp_pool_conns"],
			n.Snapshot.Counters["d2_tcp_pool_failfast_total"],
			wal, locality)
	}
	return nil
}

// printCounterGroup prints the non-zero counters sharing a name prefix.
func printCounterGroup(s obs.Snapshot, prefix, title string) {
	type kv struct {
		name string
		v    uint64
	}
	var rows []kv
	for name, v := range s.Counters {
		if v > 0 && strings.HasPrefix(name, prefix) {
			rows = append(rows, kv{name, v})
		}
	}
	if len(rows) == 0 {
		return
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	fmt.Printf("%s:\n", title)
	for _, r := range rows {
		fmt.Printf("  %-48s %12d\n", r.name, r.v)
	}
}

// printGaugeGroup prints the non-zero gauges matching any of the name
// prefixes (pool occupancy, stream throughput — values that a counter
// group can't carry).
func printGaugeGroup(s obs.Snapshot, title string, prefixes ...string) {
	type kv struct {
		name string
		v    int64
	}
	var rows []kv
	for name, v := range s.Gauges {
		if v == 0 {
			continue
		}
		for _, p := range prefixes {
			if strings.HasPrefix(name, p) {
				rows = append(rows, kv{name, v})
				break
			}
		}
	}
	if len(rows) == 0 {
		return
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	fmt.Printf("%s:\n", title)
	for _, r := range rows {
		fmt.Printf("  %-48s %12d\n", r.name, r.v)
	}
}

// printLatencies prints p50/p95/p99 for every per-RPC latency histogram
// with observations, plus the streaming-read TTFB histogram.
func printLatencies(s obs.Snapshot) {
	var names []string
	for name := range s.Histograms {
		if (strings.HasPrefix(name, "d2_rpc_client_latency_ns") ||
			name == "d2_stream_ttfb_ns" ||
			name == "d2_store_wal_fsync_ns") && s.Histograms[name].Count() > 0 {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return
	}
	sort.Strings(names)
	fmt.Println("latency (client-observed):")
	for _, name := range names {
		h := s.Histograms[name]
		label := strings.TrimSuffix(strings.TrimPrefix(name, `d2_rpc_client_latency_ns{rpc="`), `"}`)
		switch name {
		case "d2_stream_ttfb_ns":
			label = "stream_ttfb"
		case "d2_store_wal_fsync_ns":
			label = "wal_fsync"
		}
		fmt.Printf("  %-12s n=%-8d p50=%-10s p95=%-10s p99=%s\n",
			label, h.Count(),
			fmtNanos(h.Quantile(0.50)), fmtNanos(h.Quantile(0.95)), fmtNanos(h.Quantile(0.99)))
	}
}

// fmtBytes renders a byte count with a binary unit.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// fmtNanos renders a nanosecond quantile with a readable unit.
func fmtNanos(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}
