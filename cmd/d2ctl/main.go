// Command d2ctl is a client for a live D2 cluster: volume file operations
// over the D2-FS API. The volume keypair is kept in a local file so
// successive invocations address the same volume.
//
//	d2ctl -seeds 127.0.0.1:7001 mkvol home
//	d2ctl -seeds 127.0.0.1:7001 -vol home mkdir /docs
//	d2ctl -seeds 127.0.0.1:7001 -vol home write /docs/a.txt "hello d2"
//	d2ctl -seeds 127.0.0.1:7001 -vol home cat /docs/a.txt
//	d2ctl -seeds 127.0.0.1:7001 -vol home -v cat /big.bin > big.bin
//
// cat streams through the windowed-readahead pipeline (bytes flow before
// the tail is fetched); -v prints TTFB and sustained MB/s to stderr.
//
//	d2ctl -seeds 127.0.0.1:7001 -vol home ls /docs
//	d2ctl -seeds 127.0.0.1:7001 -vol home mv /docs/a.txt /docs/b.txt
//	d2ctl -seeds 127.0.0.1:7001 -vol home rm /docs/b.txt
//
// Cluster observability (scrapes every ring member over the DHT
// transport and merges their metric snapshots; with -vol the volume is
// read through the normal client path first, so the report includes a
// live lookup-cache hit rate):
//
//	d2ctl -seeds 127.0.0.1:7001 stats
//	d2ctl -seeds 127.0.0.1:7001 -vol home stats
//	d2ctl -seeds 127.0.0.1:7001 top
//
// Cluster health (scrapes every ring member's health engine; watch shows
// true per-second rates derived from each node's metric history, doctor
// prints a one-shot report naming the failing node and check):
//
//	d2ctl -seeds 127.0.0.1:7001 watch
//	d2ctl -seeds 127.0.0.1:7001 -interval 5s -n 3 watch
//	d2ctl -seeds 127.0.0.1:7001 doctor
//
// Placement census (scrapes every ring member's census sweeper and
// merges the reports; frag prints the §5 locality and fragmentation
// scores with per-volume run-length distributions, map draws the ring
// as ASCII keyspace arcs with per-node load and role heat; -o json
// emits the merged report for scripts; doctor and frag exit non-zero
// when the cluster is failing):
//
//	d2ctl -seeds 127.0.0.1:7001 frag
//	d2ctl -seeds 127.0.0.1:7001 -vol home frag
//	d2ctl -seeds 127.0.0.1:7001 -o json frag
//	d2ctl -seeds 127.0.0.1:7001 map
//
// Request tracing (reads the file under a forced trace, scrapes every
// ring member for its spans, and prints the assembled cross-node tree;
// the optional second argument exports Perfetto-loadable JSON):
//
//	d2ctl -seeds 127.0.0.1:7001 -vol home trace /docs/a.txt
//	d2ctl -seeds 127.0.0.1:7001 -vol home trace /docs/a.txt trace.json
package main

import (
	"context"
	"crypto/ed25519"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	d2 "github.com/defragdht/d2"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "d2ctl:", err)
		os.Exit(1)
	}
}

func run() error {
	seeds := flag.String("seeds", "127.0.0.1:7001", "comma-separated node addresses")
	volName := flag.String("vol", "", "volume name")
	keyFile := flag.String("keyfile", "d2ctl.key", "volume keypair file")
	verbose := flag.Bool("v", false, "cat: print TTFB and throughput to stderr")
	interval := flag.Duration("interval", 2*time.Second, "watch: refresh period")
	count := flag.Int("n", 0, "watch: number of refreshes (0 = until interrupted)")
	output := flag.String("o", "", "doctor/frag/map: output format (json = machine-readable report)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		return fmt.Errorf("usage: d2ctl [flags] mkvol|mkdir|write|cat|ls|stat|mv|rm|trace|stats|top|watch|doctor|frag|map ...")
	}
	jsonOut := *output == "json"
	if *output != "" && !jsonOut {
		return fmt.Errorf("unknown output format %q (want json)", *output)
	}

	client, err := d2.ConnectTCP(strings.Split(*seeds, ","), 3)
	if err != nil {
		return err
	}
	defer client.Close()
	ctx := context.Background()

	cmd := args[0]
	switch cmd {
	case "stats", "top":
		// With -vol, read the whole volume through the normal client path
		// first so the report includes a live lookup-cache hit rate.
		if *volName != "" {
			vol, err := loadVolume(ctx, client, *volName, *keyFile)
			if err != nil {
				return err
			}
			if err := warmRead(ctx, vol, "/"); err != nil {
				return err
			}
		}
		if cmd == "stats" {
			return runStats(ctx, client)
		}
		return runTop(ctx, client)
	case "doctor":
		return runDoctor(ctx, client, jsonOut)
	case "watch":
		return runWatch(ctx, client, *interval, *count)
	case "frag":
		// The census labels volumes by volume-ID hex. A trailing argument
		// filters on that label directly; -vol resolves the human name
		// through the local keypair file instead.
		volFilter := ""
		if len(args) > 1 {
			volFilter = args[1]
		} else if *volName != "" {
			vol, err := loadVolume(ctx, client, *volName, *keyFile)
			if err != nil {
				return err
			}
			volFilter = vol.VolumeID().String()
		}
		return runFrag(ctx, client, volFilter, jsonOut)
	case "map":
		return runMap(ctx, client, jsonOut)
	}
	if cmd == "mkvol" {
		if len(args) != 2 {
			return fmt.Errorf("usage: mkvol <name>")
		}
		_, priv, err := d2.GenerateKey()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*keyFile, []byte(hex.EncodeToString(priv)), 0o600); err != nil {
			return err
		}
		vol, err := client.CreateVolume(ctx, args[1], priv, d2.VolumeOptions{})
		if err != nil {
			return err
		}
		if err := vol.Sync(ctx); err != nil {
			return err
		}
		fmt.Printf("volume %q created; key saved to %s\n", args[1], *keyFile)
		return nil
	}

	if *volName == "" {
		return fmt.Errorf("-vol is required for %s", cmd)
	}
	vol, err := loadVolume(ctx, client, *volName, *keyFile)
	if err != nil {
		return err
	}

	switch cmd {
	case "trace":
		if len(args) != 2 && len(args) != 3 {
			return fmt.Errorf("usage: trace <path> [export.json]")
		}
		export := ""
		if len(args) == 3 {
			export = args[2]
		}
		return runTrace(ctx, client, vol, args[1], export)
	case "mkdir":
		if len(args) != 2 {
			return fmt.Errorf("usage: mkdir <path>")
		}
		if err := vol.MkdirAll(ctx, args[1]); err != nil {
			return err
		}
	case "write":
		if len(args) != 3 {
			return fmt.Errorf("usage: write <path> <content>")
		}
		if err := vol.WriteFile(ctx, args[1], []byte(args[2])); err != nil {
			return err
		}
	case "cat":
		if len(args) != 2 {
			return fmt.Errorf("usage: cat <path>")
		}
		if err := runCat(ctx, vol, args[1], *verbose); err != nil {
			return err
		}
	case "ls":
		if len(args) != 2 {
			return fmt.Errorf("usage: ls <path>")
		}
		infos, err := vol.ReadDir(ctx, args[1])
		if err != nil {
			return err
		}
		for _, fi := range infos {
			kind := "f"
			if fi.IsDir {
				kind = "d"
			}
			fmt.Printf("%s %10d %s\n", kind, fi.Size, fi.Name)
		}
	case "stat":
		if len(args) != 2 {
			return fmt.Errorf("usage: stat <path>")
		}
		fi, err := vol.Stat(ctx, args[1])
		if err != nil {
			return err
		}
		fmt.Printf("%+v\n", fi)
	case "mv":
		if len(args) != 3 {
			return fmt.Errorf("usage: mv <old> <new>")
		}
		if err := vol.Rename(ctx, args[1], args[2]); err != nil {
			return err
		}
	case "rm":
		if len(args) != 2 {
			return fmt.Errorf("usage: rm <path>")
		}
		if err := vol.Remove(ctx, args[1]); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	return vol.Sync(ctx)
}

// runCat streams a file to stdout through the windowed-readahead read
// path, so the first bytes print before the tail is fetched. With -v the
// pipeline's stats (TTFB, sustained throughput, window trajectory) go to
// stderr where they cannot corrupt piped output.
func runCat(ctx context.Context, vol *d2.Volume, path string, verbose bool) error {
	r, err := vol.ReadStream(ctx, path)
	if err != nil {
		return err
	}
	_, cerr := io.Copy(os.Stdout, r)
	if err := r.Close(); cerr == nil {
		cerr = err
	}
	if verbose {
		if st, ok := r.(d2.StatStream); ok {
			s := st.Stats()
			fmt.Fprintf(os.Stderr, "d2ctl: %d bytes, ttfb %s, %.2f MB/s, stalls %d, window %v\n",
				s.Bytes, s.TTFB.Round(time.Microsecond), s.MBps(), s.Stalls, s.WindowTrajectory)
		}
	}
	return cerr
}

// loadVolume opens a volume with the keypair saved by mkvol.
func loadVolume(ctx context.Context, client *d2.Client, name, keyFile string) (*d2.Volume, error) {
	raw, err := os.ReadFile(keyFile)
	if err != nil {
		return nil, fmt.Errorf("read key file (run mkvol first): %w", err)
	}
	privBytes, err := hex.DecodeString(strings.TrimSpace(string(raw)))
	if err != nil {
		return nil, fmt.Errorf("parse key file: %w", err)
	}
	priv := ed25519.PrivateKey(privBytes)
	pub := priv.Public().(ed25519.PublicKey)
	return client.OpenVolume(ctx, name, pub, priv, d2.VolumeOptions{})
}

// warmRead reads every file under dir so the client's lookup cache sees a
// real workload before a stats report.
func warmRead(ctx context.Context, vol *d2.Volume, dir string) error {
	infos, err := vol.ReadDir(ctx, dir)
	if err != nil {
		return err
	}
	for _, fi := range infos {
		path := strings.TrimSuffix(dir, "/") + "/" + fi.Name
		if fi.IsDir {
			if err := warmRead(ctx, vol, path); err != nil {
				return err
			}
			continue
		}
		if _, err := vol.ReadFile(ctx, path); err != nil {
			return err
		}
	}
	return nil
}
