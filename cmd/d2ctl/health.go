package main

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	d2 "github.com/defragdht/d2"
)

// runDoctor prints a one-shot cluster health report: the overall
// verdict, the §10 load-imbalance check, a per-node table, and — the
// point of the exercise — every failing or degraded check with the node
// responsible. Exits non-zero when the cluster is failing, so scripts
// and CI can gate on it; -o json emits the raw report instead of the
// rendered tables.
func runDoctor(ctx context.Context, client *d2.Client, jsonOut bool) error {
	report, err := client.ClusterDoctor(ctx)
	if err != nil {
		return err
	}
	if report.Nodes == 0 {
		return fmt.Errorf("no reachable nodes")
	}
	if jsonOut {
		if err := printJSON(report); err != nil {
			return err
		}
		if report.State == "failing" {
			return errClusterFailing
		}
		return nil
	}

	fmt.Printf("cluster state: %s (%d nodes)\n", strings.ToUpper(report.State), report.Nodes)
	fmt.Printf("%s: %s  %.3f (warn >= %.2f, fail >= %.2f)\n",
		report.Imbalance.Name, report.Imbalance.State,
		report.Imbalance.Value, report.Imbalance.Warn, report.Imbalance.Fail)

	fmt.Printf("\n%-22s %-9s %8s %10s %10s  %s\n",
		"ADDR", "STATE", "BLOCKS", "STORED", "PRIMARY", "WORST CHECK")
	for _, m := range report.Members {
		worst := "-"
		if m.Status != nil {
			for _, c := range m.Status.Checks {
				if c.State != "ok" {
					worst = fmt.Sprintf("%s=%s (%.4g)", c.Name, c.State, c.Value)
					break
				}
			}
		}
		fmt.Printf("%-22s %-9s %8d %10s %10s  %s\n",
			m.Addr, m.State, m.Blocks, fmtBytes(m.StoredBytes), fmtBytes(m.RespBytes), worst)
	}

	if len(report.Problems) == 0 {
		fmt.Println("\nno problems found")
	} else {
		fmt.Printf("\nproblems (%d):\n", len(report.Problems))
		for _, p := range report.Problems {
			fmt.Printf("  [%s] %s: %s — %s\n", strings.ToUpper(p.State), p.Node, p.Check, p.Evidence)
		}
	}
	if report.State == "failing" {
		return errClusterFailing
	}
	return nil
}

// runWatch refreshes a live cluster table every interval, top-style. The
// rates shown are true per-second rates from each node's history deltas
// (computed node-side over its lookback window), not cumulative-counter
// averages. n limits the number of refreshes (0 = forever).
func runWatch(ctx context.Context, client *d2.Client, interval time.Duration, n int) error {
	for i := 0; n <= 0 || i < n; i++ {
		if i > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(interval):
			}
		}
		nodes, err := client.ClusterHealth(ctx)
		if err != nil {
			return err
		}
		// Clear the screen and home the cursor between refreshes, but only
		// after the first paint so a single snapshot (or an error) scrolls
		// normally.
		if n != 1 {
			fmt.Print("\x1b[2J\x1b[H")
		}
		printWatchTable(nodes)
	}
	return nil
}

// printWatchTable renders one watch refresh.
func printWatchTable(nodes []d2.NodeHealth) {
	fmt.Printf("d2 watch — %d nodes — %s\n\n", len(nodes), time.Now().Format("15:04:05"))
	fmt.Printf("%-22s %-9s %8s %10s %9s %9s %6s %8s %6s  %s\n",
		"ADDR", "STATE", "BLOCKS", "STORED", "RPC/S", "WIRE/S", "POOL", "DEFICIT", "FRAG", "WORST CHECK")
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].RespBytes > nodes[j].RespBytes })
	for _, nd := range nodes {
		var rps, wire float64
		var pool, deficit int64
		worst, frag := "-", "-"
		if nd.Rates != nil {
			for name, v := range nd.Rates.Counters {
				if strings.HasPrefix(name, "d2_rpc_server_total") {
					rps += v
				}
				if strings.HasPrefix(name, "d2_tcp_wire_bytes_total") {
					wire += v
				}
			}
			pool = nd.Rates.Gauges["d2_tcp_pool_conns"]
			deficit = nd.Rates.Gauges["d2_node_replica_deficit"]
			// The census gauge rides the same history samples as every
			// other metric, so successive refreshes show the locality
			// trend as the balancer works.
			if m := nd.Rates.Gauges["d2_census_frag_ratio_milli"]; m > 0 {
				frag = fmt.Sprintf("%.2f", float64(m)/1000)
			}
		}
		if nd.Status != nil {
			for _, c := range nd.Status.Checks {
				if c.State != "ok" {
					worst = fmt.Sprintf("%s=%s", c.Name, c.State)
					break
				}
			}
		}
		fmt.Printf("%-22s %-9s %8d %10s %9.1f %8s/s %6d %8d %6s  %s\n",
			nd.Self.Addr, nd.State, nd.Blocks, fmtBytes(nd.StoredBytes),
			rps, fmtBytes(int64(wire)), pool, deficit, frag, worst)
	}
}
