package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	d2 "github.com/defragdht/d2"
	"github.com/defragdht/d2/internal/obs/census"
)

// errClusterFailing makes frag/doctor exit non-zero when the cluster is
// in a failing state, so scripts can gate on placement health.
var errClusterFailing = fmt.Errorf("cluster state is failing")

// runFrag prints the cluster fragmentation report from the merged
// placement census: §5 locality and frag-ratio scores, the per-volume
// run-length distribution, and a per-node role breakdown. With volFilter
// only matching volumes are shown (a hex volume-ID prefix). Exits
// non-zero when the census classifies the cluster as failing.
func runFrag(ctx context.Context, client *d2.Client, volFilter string, jsonOut bool) error {
	nodes, cluster, err := client.ClusterCensus(ctx)
	if err != nil {
		return err
	}
	if len(nodes) == 0 {
		return fmt.Errorf("no reachable nodes")
	}
	if jsonOut {
		if err := printJSON(cluster); err != nil {
			return err
		}
		if cluster.State == "failing" {
			return errClusterFailing
		}
		return nil
	}

	fmt.Printf("placement census: %d nodes, %d blocks, %s primary\n",
		len(nodes), cluster.TotalBlocks, fmtBytes(cluster.TotalBytes))
	fmt.Printf("state: %s\n", strings.ToUpper(cluster.State))
	fmt.Printf("locality (owner switches per file scan, §5): %.3f\n", cluster.Locality)
	fmt.Printf("frag ratio (runs per file, 1.0 = defragmented): %.3f (warn >= %.1f, fail >= %.1f)\n",
		cluster.FragRatio, census.FragWarn, census.FragFail)
	fmt.Printf("load imbalance (stddev/mean of primary bytes, §10): %.3f\n", cluster.Imbalance)
	fmt.Printf("replica spread (stddev/mean of replica bytes): %.3f\n", cluster.ReplicaSpread)
	if cluster.StalePointers > 0 {
		fmt.Printf("stale pointers: %d\n", cluster.StalePointers)
	}

	shown := 0
	for i := range cluster.Volumes {
		v := &cluster.Volumes[i]
		if volFilter != "" && !strings.HasPrefix(v.Volume, volFilter) {
			continue
		}
		shown++
		fmt.Printf("\nvolume %s: %d blocks (%s), %d files, %d runs, frag %.3f, longest run %d\n",
			v.Volume, v.Blocks, fmtBytes(v.Bytes), v.Files, v.Runs, v.FragRatio(), v.MaxRun)
		printRunHist(v.RunHist)
	}
	if volFilter != "" && shown == 0 {
		return fmt.Errorf("no volume matching %q in the census (labels are hex volume-ID prefixes; try frag with no argument)", volFilter)
	}

	fmt.Printf("\n%-22s %-10s %8s %10s %10s %10s %6s %6s\n",
		"ADDR", "ID", "FILES", "PRIMARY", "REPLICA", "POINTER", "STALE", "FRAG")
	for _, n := range nodes {
		r := n.Report
		if r == nil {
			fmt.Printf("%-22s %-10s %8s (census disabled)\n", n.Self.Addr, n.Self.ID.Short(), "-")
			continue
		}
		fmt.Printf("%-22s %-10s %8d %10s %10s %10s %6d %6.2f\n",
			n.Self.Addr, n.Self.ID.Short(), r.Files,
			fmtBytes(r.PrimaryBytes), fmtBytes(r.ReplicaBytes), fmtBytes(r.PointerBytes),
			r.StalePointers, r.FragRatio())
	}

	if cluster.State == "failing" {
		return errClusterFailing
	}
	return nil
}

// printRunHist renders a power-of-two run-length histogram: bucket i
// counts runs of length in (2^(i-1), 2^i].
func printRunHist(hist [census.RunBuckets]int64) {
	var max int64
	for _, c := range hist {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		return
	}
	fmt.Println("  run length   runs")
	for i, c := range hist {
		if c == 0 {
			continue
		}
		bar := strings.Repeat("#", int(1+c*31/max))
		fmt.Printf("  %9s %6d  %s\n", fmt.Sprintf("<=%d", 1<<i), c, bar)
	}
}

// mapSlots is the width of the ring line in runMap: each character is
// one keyspace slot colored by its owning node.
const mapSlots = 64

// runMap draws an ASCII map of the ring: one line of keyspace slots
// lettered by owning node, then a legend with each node's arc share,
// load heat bar, and role breakdown from its census report.
func runMap(ctx context.Context, client *d2.Client, jsonOut bool) error {
	nodes, cluster, err := client.ClusterCensus(ctx)
	if err != nil {
		return err
	}
	if len(nodes) == 0 {
		return fmt.Errorf("no reachable nodes")
	}
	if jsonOut {
		return printJSON(cluster)
	}

	// Order nodes by ring position and assign each a letter. Arc share
	// comes from 64-bit key prefixes: (self - pred) mod 2^64 is exact
	// enough for display at any realistic ring size.
	sort.Slice(nodes, func(i, j int) bool {
		return nodes[i].Self.ID.Less(nodes[j].Self.ID)
	})
	letters := "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
	letter := func(i int) byte {
		if i < len(letters) {
			return letters[i]
		}
		return '*'
	}

	// Each slot's center position belongs to the first node at or after
	// it in ring order (arcs are (pred, self], so ownership is the
	// ceiling in the sorted ID list, wrapping past the top).
	ids := make([]uint64, len(nodes))
	for i, n := range nodes {
		ids[i] = binary.BigEndian.Uint64(n.Self.ID[:8])
	}
	line := make([]byte, mapSlots)
	for s := 0; s < mapSlots; s++ {
		p := uint64(s) * (^uint64(0) / mapSlots)
		owner := 0
		found := false
		for i, id := range ids {
			if id >= p {
				owner, found = i, true
				break
			}
		}
		if !found {
			owner = 0 // wrapped past the highest ID: the lowest node owns it
		}
		line[s] = letter(owner)
	}
	fmt.Printf("ring map — %d nodes, %d keyspace slots, state %s\n\n", len(nodes), mapSlots, strings.ToUpper(cluster.State))
	fmt.Printf("|%s|\n\n", line)

	var maxPrimary int64 = 1
	for _, n := range nodes {
		if n.Report != nil && n.Report.PrimaryBytes > maxPrimary {
			maxPrimary = n.Report.PrimaryBytes
		}
	}
	fmt.Printf("%-3s %-22s %-10s %6s %-12s %10s %10s %10s %6s\n",
		"KEY", "ADDR", "ID", "ARC%", "LOAD", "PRIMARY", "REPLICA", "POINTER", "FRAG")
	for i, n := range nodes {
		pred := ids[(i+len(ids)-1)%len(ids)]
		arc := float64(ids[i]-pred) / float64(^uint64(0)) // uint64 wrap = circular distance
		if len(ids) == 1 {
			arc = 1
		}
		load, frag := "-", "-"
		primary, replica, pointer := "-", "-", "-"
		if r := n.Report; r != nil {
			heat := int(r.PrimaryBytes * 10 / maxPrimary)
			load = strings.Repeat("#", heat) + strings.Repeat(".", 10-heat)
			primary, replica, pointer = fmtBytes(r.PrimaryBytes), fmtBytes(r.ReplicaBytes), fmtBytes(r.PointerBytes)
			frag = fmt.Sprintf("%.2f", r.FragRatio())
		}
		fmt.Printf("%-3c %-22s %-10s %5.1f%% %-12s %10s %10s %10s %6s\n",
			letter(i), n.Self.Addr, n.Self.ID.Short(), 100*arc, load,
			primary, replica, pointer, frag)
	}
	return nil
}

// printJSON writes v to stdout, indented, for -o json consumers.
func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
