// Command d2perf runs the §9 performance experiments: Figure 9 (lookup
// traffic), Figures 10–12 (speedups), Figure 13 (cache miss rates),
// Figures 14–15 (access-group latency scatter summaries), and the
// lookup-cache TTL ablation. One sweep feeds every figure.
//
// Usage:
//
//	d2perf [-scale small|medium|full] [-workers N] [-fig9] [-fig10] [-fig11]
//	       [-fig12] [-fig13] [-fig14] [-fig15] [-ablation-cachettl]
//
// With no selection flags, everything runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/defragdht/d2/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "d2perf:", err)
		os.Exit(1)
	}
}

func run() error {
	scaleName := flag.String("scale", "medium", "experiment scale: small, medium, or full")
	workers := flag.Int("workers", 0, "parallel simulation workers (0 = one per core)")
	fig9 := flag.Bool("fig9", false, "Figure 9: lookup messages per node")
	fig10 := flag.Bool("fig10", false, "Figure 10: speedup over traditional")
	fig11 := flag.Bool("fig11", false, "Figure 11: speedup over traditional-file")
	fig12 := flag.Bool("fig12", false, "Figure 12: per-user speedups")
	fig13 := flag.Bool("fig13", false, "Figure 13: cache miss rates")
	fig14 := flag.Bool("fig14", false, "Figure 14: latency scatter vs traditional")
	fig15 := flag.Bool("fig15", false, "Figure 15: latency scatter vs traditional-file")
	ablTTL := flag.Bool("ablation-cachettl", false, "ablation: lookup-cache TTL sweep")
	ablHyb := flag.Bool("ablation-hybrid", false, "ablation: hybrid locality+hashing placement (§11)")
	flag.Parse()

	scale, err := experiments.ScaleByName(*scaleName)
	if err != nil {
		return err
	}
	scale.Workers = *workers
	all := !*fig9 && !*fig10 && !*fig11 && !*fig12 && !*fig13 && !*fig14 && !*fig15 && !*ablTTL && !*ablHyb

	needSweep := all || *fig9 || *fig10 || *fig11 || *fig12 || *fig13 || *fig14 || *fig15
	var points []experiments.PerfPoint
	if needSweep {
		fmt.Fprintf(os.Stderr, "running perf sweep at scale %s...\n", scale.Name)
		points = experiments.RunPerfSweep(scale)
	}
	if *fig9 || all {
		fmt.Println(experiments.Fig9(points))
	}
	if *fig10 || all {
		fmt.Println(experiments.Fig10(points))
	}
	if *fig11 || all {
		fmt.Println(experiments.Fig11(points))
	}
	if *fig12 || all {
		fmt.Println(experiments.Fig12(points))
	}
	if *fig13 || all {
		fmt.Println(experiments.Fig13(points))
	}
	if *fig14 || all {
		fmt.Println(experiments.RenderScatter(
			"Figure 14a: access-group latency, D2 vs traditional (seq)",
			experiments.Fig14Scatter(points, false)))
		fmt.Println(experiments.RenderScatter(
			"Figure 14b: access-group latency, D2 vs traditional (para)",
			experiments.Fig14Scatter(points, true)))
	}
	if *fig15 || all {
		fmt.Println(experiments.RenderScatter(
			"Figure 15a: access-group latency, D2 vs traditional-file (seq)",
			experiments.Fig15Scatter(points, false)))
		fmt.Println(experiments.RenderScatter(
			"Figure 15b: access-group latency, D2 vs traditional-file (para)",
			experiments.Fig15Scatter(points, true)))
	}
	if *ablTTL || all {
		fmt.Println(experiments.AblationCacheTTL(scale))
	}
	if *ablHyb || all {
		fmt.Println(experiments.AblationHybrid(scale))
	}
	return nil
}
