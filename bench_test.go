package d2_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index). Each benchmark runs
// the corresponding experiment at the "small" scale — large enough to show
// the paper's shapes, small enough for `go test -bench=.` — and reports
// the headline quantity as a custom metric. Run the cmd/ tools with
// -scale full for paper-scale numbers (recorded in EXPERIMENTS.md).

import (
	"context"
	"strconv"
	"testing"
	"time"

	d2 "github.com/defragdht/d2"
	"github.com/defragdht/d2/internal/experiments"
	"github.com/defragdht/d2/internal/stats"
)

func benchScale() experiments.Scale { return experiments.Small }

// BenchmarkTable1_Workloads generates the three synthetic workloads.
func BenchmarkTable1_Workloads(b *testing.B) {
	b.ReportAllocs()
	s := benchScale()
	for i := 0; i < b.N; i++ {
		tbl := experiments.Table1(s)
		if len(tbl.Rows) != 3 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkFig3_Locality measures nodes accessed per user-hour under the
// three placement scenarios; the reported metric is ordered/traditional
// (the paper shows ≈ 0.1).
func BenchmarkFig3_Locality(b *testing.B) {
	b.ReportAllocs()
	s := benchScale()
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig3(s)
		ratio = rows[0].Ordered / rows[0].Traditional
	}
	b.ReportMetric(ratio, "ordered/trad")
}

// BenchmarkTable2_NodesPerTask measures mean nodes per task; the metric is
// D2's mean at inter=5s (paper: 2 vs traditional's 11).
func BenchmarkTable2_NodesPerTask(b *testing.B) {
	b.ReportAllocs()
	s := benchScale()
	var d2Nodes, tradNodes float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2(s)
		d2Nodes, tradNodes = rows[1].NodesD2, rows[1].NodesBlock
	}
	b.ReportMetric(d2Nodes, "d2-nodes/task")
	b.ReportMetric(tradNodes, "trad-nodes/task")
}

// BenchmarkFig7_TaskAvailability runs the availability simulation; the
// metric is traditional/D2 mean unavailability (paper: ≥ 10×).
func BenchmarkFig7_TaskAvailability(b *testing.B) {
	b.ReportAllocs()
	s := benchScale()
	var improvement float64
	for i := 0; i < b.N; i++ {
		res := experiments.Fig7(s)
		d2 := stats.Mean(res.Unavail["d2"][1])
		trad := stats.Mean(res.Unavail["traditional"][1])
		if d2 > 0 {
			improvement = trad / d2
		} else if trad > 0 {
			improvement = 1000 // D2 had zero failures
		}
	}
	b.ReportMetric(improvement, "trad/d2-unavail")
}

// BenchmarkFig8_PerUserUnavailability ranks per-user unavailability.
func BenchmarkFig8_PerUserUnavailability(b *testing.B) {
	b.ReportAllocs()
	s := benchScale()
	var affected float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig8(s)
		n := 0
		for _, r := range rows {
			if r.System == "d2" {
				n++
			}
		}
		affected = float64(n)
	}
	b.ReportMetric(affected, "d2-users-affected")
}

// perfPoints caches the sweep across the per-figure benchmarks (each
// figure reads a different slice of the same experiment).
var perfPoints []experiments.PerfPoint

func sweep(b *testing.B) []experiments.PerfPoint {
	b.Helper()
	if perfPoints == nil {
		perfPoints = experiments.RunPerfSweep(benchScale())
	}
	return perfPoints
}

func largestSeq1500(points []experiments.PerfPoint) *experiments.PerfPoint {
	var out *experiments.PerfPoint
	for i := range points {
		p := &points[i]
		if p.BPS != 1_500_000 || p.Parallel {
			continue
		}
		if out == nil || p.Nodes > out.Nodes {
			out = p
		}
	}
	return out
}

// BenchmarkFig9_LookupTraffic reports D2's lookup messages per node as a
// fraction of traditional's at the largest size (paper: < 1/20 at 1,000
// nodes).
func BenchmarkFig9_LookupTraffic(b *testing.B) {
	b.ReportAllocs()
	var ratio float64
	for i := 0; i < b.N; i++ {
		p := largestSeq1500(sweep(b))
		ratio = p.D2.MsgsPerNode() / p.Trad.MsgsPerNode()
	}
	b.ReportMetric(ratio, "d2/trad-msgs")
}

// BenchmarkFig10_SpeedupVsTraditional reports the seq geomean speedup at
// the largest size and 1500 kbps (paper: ≥ 1.9 at 1,000 nodes).
func BenchmarkFig10_SpeedupVsTraditional(b *testing.B) {
	b.ReportAllocs()
	var speedup float64
	for i := 0; i < b.N; i++ {
		tbl := experiments.Fig10(sweep(b))
		if len(tbl.Rows) == 0 {
			b.Fatal("no rows")
		}
		speedup = lastSeqSpeedup(tbl.Rows)
	}
	b.ReportMetric(speedup, "seq-speedup")
}

func lastSeqSpeedup(rows [][]string) float64 {
	var out float64
	for _, r := range rows {
		if r[1] == "1500" && r[2] == "seq" {
			var v float64
			_, _ = sscanFloat(r[3], &v)
			out = v
		}
	}
	return out
}

func sscanFloat(s string, out *float64) (int, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	*out = v
	return 1, nil
}

// BenchmarkFig11_SpeedupVsTradFile reports the seq speedup over the
// traditional-file DHT.
func BenchmarkFig11_SpeedupVsTradFile(b *testing.B) {
	b.ReportAllocs()
	var speedup float64
	for i := 0; i < b.N; i++ {
		tbl := experiments.Fig11(sweep(b))
		speedup = lastSeqSpeedup(tbl.Rows)
	}
	b.ReportMetric(speedup, "seq-speedup")
}

// BenchmarkFig12_PerUserSpeedup reports how many users see a speedup > 1
// (paper: most users, a few degrade).
func BenchmarkFig12_PerUserSpeedup(b *testing.B) {
	b.ReportAllocs()
	var fasterFrac float64
	for i := 0; i < b.N; i++ {
		tbl := experiments.Fig12(sweep(b))
		faster, total := 0, 0
		for _, r := range tbl.Rows {
			if r[0] != "seq" {
				continue
			}
			total++
			var v float64
			_, _ = sscanFloat(r[2], &v)
			if v > 1 {
				faster++
			}
		}
		if total > 0 {
			fasterFrac = float64(faster) / float64(total)
		}
	}
	b.ReportMetric(fasterFrac, "users-faster")
}

// BenchmarkFig13_CacheMissRate reports D2's and traditional's mean
// per-user miss rates at the largest size (paper: 13% vs > 47%).
func BenchmarkFig13_CacheMissRate(b *testing.B) {
	b.ReportAllocs()
	var d2Miss, tradMiss float64
	for i := 0; i < b.N; i++ {
		p := largestSeq1500(sweep(b))
		d2Miss = p.D2.MeanUserMissRate()
		tradMiss = p.Trad.MeanUserMissRate()
	}
	b.ReportMetric(d2Miss, "d2-miss")
	b.ReportMetric(tradMiss, "trad-miss")
}

// BenchmarkFig14_LatencyScatter reports the fraction of access groups
// above the diagonal vs the traditional DHT (seq).
func BenchmarkFig14_LatencyScatter(b *testing.B) {
	b.ReportAllocs()
	var share float64
	for i := 0; i < b.N; i++ {
		pts := experiments.Fig14Scatter(sweep(b), false)
		faster := 0
		for _, p := range pts {
			if p.FasterD2 {
				faster++
			}
		}
		if len(pts) > 0 {
			share = float64(faster) / float64(len(pts))
		}
	}
	b.ReportMetric(share, "faster-share")
}

// BenchmarkFig15_LatencyScatterFile is the same vs the traditional-file
// DHT.
func BenchmarkFig15_LatencyScatterFile(b *testing.B) {
	b.ReportAllocs()
	var share float64
	for i := 0; i < b.N; i++ {
		pts := experiments.Fig15Scatter(sweep(b), false)
		faster := 0
		for _, p := range pts {
			if p.FasterD2 {
				faster++
			}
		}
		if len(pts) > 0 {
			share = float64(faster) / float64(len(pts))
		}
	}
	b.ReportMetric(share, "faster-share")
}

// BenchmarkFig16_LoadImbalanceHarvard reports D2's mean imbalance over the
// Harvard run (the paper's Figure 16 line sits at or below traditional's).
func BenchmarkFig16_LoadImbalanceHarvard(b *testing.B) {
	b.ReportAllocs()
	s := benchScale()
	var d2Imb, tradImb float64
	for i := 0; i < b.N; i++ {
		series := experiments.Fig16(s)
		for _, sr := range series {
			m := stats.Mean(sr.Imbalance)
			switch sr.System {
			case "d2":
				d2Imb = m
			case "traditional":
				tradImb = m
			}
		}
	}
	b.ReportMetric(d2Imb, "d2-imbalance")
	b.ReportMetric(tradImb, "trad-imbalance")
}

// BenchmarkFig17_LoadImbalanceWebcache is the same under the extreme-churn
// web cache workload.
func BenchmarkFig17_LoadImbalanceWebcache(b *testing.B) {
	b.ReportAllocs()
	s := benchScale()
	var d2Imb float64
	for i := 0; i < b.N; i++ {
		series := experiments.Fig17(s)
		for _, sr := range series {
			if sr.System == "d2" {
				d2Imb = stats.Mean(sr.Imbalance)
			}
		}
	}
	b.ReportMetric(d2Imb, "d2-imbalance")
}

// BenchmarkTable3_ChurnRatios reports the webcache daily write ratio
// (paper: ≈ 1 and beyond; Harvard: 0.1–0.2).
func BenchmarkTable3_ChurnRatios(b *testing.B) {
	b.ReportAllocs()
	s := benchScale()
	var last float64
	for i := 0; i < b.N; i++ {
		tbl := experiments.Table3(s)
		row := tbl.Rows[len(tbl.Rows)-1]
		_, _ = sscanFloat(row[3], &last)
	}
	b.ReportMetric(last, "webcache-W/T")
}

// BenchmarkTable4_MigrationOverhead reports the Harvard L/W ratio (paper:
// ≈ 0.5 over the week).
func BenchmarkTable4_MigrationOverhead(b *testing.B) {
	b.ReportAllocs()
	s := benchScale()
	var ratio float64
	for i := 0; i < b.N; i++ {
		tbl := experiments.Table4(s)
		for _, r := range tbl.Rows {
			if r[0] == "harvard" && r[1] == "total" && r[4] != "-" {
				_, _ = sscanFloat(r[4], &ratio)
			}
		}
	}
	b.ReportMetric(ratio, "harvard-L/W")
}

// BenchmarkAblation_Pointers reports migration bytes with pointers off
// divided by with pointers on (> 1 means pointers help, §6).
func BenchmarkAblation_Pointers(b *testing.B) {
	b.ReportAllocs()
	s := benchScale()
	var tbl *experiments.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.AblationPointers(s)
	}
	var on, off float64
	for _, r := range tbl.Rows {
		var v float64
		_, _ = sscanFloat(r[1], &v)
		if r[0] == "on" {
			on = v
		} else {
			off = v
		}
	}
	if on > 0 {
		b.ReportMetric(off/on, "off/on-migration")
	}
}

// BenchmarkAblation_Replicas compares r=3 and r=4 unavailability.
func BenchmarkAblation_Replicas(b *testing.B) {
	b.ReportAllocs()
	s := benchScale()
	for i := 0; i < b.N; i++ {
		tbl := experiments.AblationReplicas(s)
		if len(tbl.Rows) != 3 {
			b.Fatal("bad ablation table")
		}
	}
}

// BenchmarkAblation_CacheTTL sweeps the lookup-cache TTL.
func BenchmarkAblation_CacheTTL(b *testing.B) {
	b.ReportAllocs()
	s := benchScale()
	for i := 0; i < b.N; i++ {
		tbl := experiments.AblationCacheTTL(s)
		if len(tbl.Rows) != 4 {
			b.Fatal("bad TTL table")
		}
	}
}

// BenchmarkEndToEnd_VolumeWrite measures the live-system write path: a
// volume write through a small in-process cluster (blocks, metadata
// chain, replication).
func BenchmarkEndToEnd_VolumeWrite(b *testing.B) {
	b.ReportAllocs()
	benchVolume(b, true)
}

// BenchmarkEndToEnd_VolumeRead measures the live read path with a warm
// lookup cache.
func BenchmarkEndToEnd_VolumeRead(b *testing.B) {
	b.ReportAllocs()
	benchVolume(b, false)
}

func benchVolume(b *testing.B, write bool) {
	b.Helper()
	ctx := context.Background()
	cluster, err := d2.NewCluster(ctx, 8, d2.NodeOptions{
		Replicas:          3,
		StabilizeInterval: 20 * time.Millisecond,
		RepairInterval:    200 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	client, err := cluster.Client()
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	_, priv, _ := d2.GenerateKey()
	vol, err := client.CreateVolume(ctx, "bench", priv, d2.VolumeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 32*1024)
	if err := vol.WriteFile(ctx, "/f", payload); err != nil {
		b.Fatal(err)
	}
	if err := vol.Sync(ctx); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if write {
			if err := vol.WriteFile(ctx, "/f", payload); err != nil {
				b.Fatal(err)
			}
			if i%64 == 63 {
				if err := vol.Sync(ctx); err != nil {
					b.Fatal(err)
				}
			}
		} else {
			if _, err := vol.ReadFile(ctx, "/f"); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblation_Hybrid evaluates the §11 future-work hybrid placement.
func BenchmarkAblation_Hybrid(b *testing.B) {
	b.ReportAllocs()
	s := benchScale()
	for i := 0; i < b.N; i++ {
		tbl := experiments.AblationHybrid(s)
		if len(tbl.Rows) == 0 {
			b.Fatal("empty hybrid ablation")
		}
	}
}
