package d2_test

import (
	"bytes"
	"context"
	"io"
	"math/rand/v2"
	"testing"
	"time"

	d2 "github.com/defragdht/d2"
)

// TestStreamSurvivesMidStreamNodeKill streams a multi-megabyte file
// while the node holding the most of it is killed partway through. The
// segment retry path must re-resolve ownership and assemble the rest
// from replicas without surfacing an error.
func TestStreamSurvivesMidStreamNodeKill(t *testing.T) {
	ctx := context.Background()
	cluster, err := d2.NewCluster(ctx, 9, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	writer, err := cluster.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()

	pub, priv, err := d2.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	vol, err := writer.CreateVolume(ctx, "media", priv, d2.VolumeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const size = 4 << 20 // 512 blocks, 32 segments
	want := make([]byte, size)
	rng := rand.New(rand.NewPCG(11, 13))
	for i := range want {
		want[i] = byte(rng.Uint64())
	}
	w, err := vol.WriteStream(ctx, "/movie.bin")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(want); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := vol.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	// Let the repair loop replicate the fresh blocks before the kill.
	time.Sleep(500 * time.Millisecond)

	// Stream through a second client so the writer's caches cannot mask
	// network fetches.
	reader, err := cluster.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()
	rvol, err := reader.OpenVolume(ctx, "media", pub, nil, d2.VolumeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := rvol.ReadStream(ctx, "/movie.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	got := make([]byte, 0, size)
	buf := make([]byte, 1<<20)
	n, err := io.ReadFull(r, buf)
	if err != nil {
		t.Fatalf("first MB: %v", err)
	}
	got = append(got, buf[:n]...)

	// Kill the most-loaded node (the file's locality-preserving keys
	// concentrate there) while the stream is mid-flight.
	victim, most := 1, int64(-1)
	for i, b := range cluster.StoredBytes() {
		if i == 0 {
			continue // keep the clients' seed up
		}
		if b > most {
			victim, most = i, b
		}
	}
	if err := cluster.CloseNode(victim); err != nil {
		t.Fatal(err)
	}
	t.Logf("killed node %d holding %d bytes mid-stream", victim, most)

	for {
		n, err := r.Read(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("read after node kill: %v", err)
		}
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("streamed content corrupt after node kill (%d bytes, want %d)", len(got), len(want))
	}
	st := r.(d2.StatStream).Stats()
	if st.Bytes != size {
		t.Errorf("Stats.Bytes = %d, want %d", st.Bytes, size)
	}
	if st.TTFB <= 0 {
		t.Errorf("Stats.TTFB = %v, want > 0", st.TTFB)
	}
}
