package d2_test

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	d2 "github.com/defragdht/d2"
	"github.com/defragdht/d2/internal/keys"
)

// censusOwner returns which of the ring IDs owns key k: the first ID at
// or after k, wrapping to the lowest ID past the top of the keyspace.
func censusOwner(ids []keys.Key, k keys.Key) keys.Key {
	best, found := keys.Key{}, false
	for _, id := range ids {
		if k.Compare(id) <= 0 && (!found || id.Less(best)) {
			best, found = id, true
		}
	}
	if found {
		return best
	}
	low := ids[0]
	for _, id := range ids[1:] {
		if id.Less(low) {
			low = id
		}
	}
	return low
}

// censusFileKey builds a block key with the given 52-byte file prefix.
func censusFileKey(prefix keys.Key, block uint64) keys.Key {
	var k keys.Key
	copy(k[:52], prefix[:52])
	binary.BigEndian.PutUint64(k[52:60], block)
	return k
}

// TestCensusLocalityImprovesAfterBalance is the live §5 experiment on a
// 3-node TCP ring: a file whose consecutive blocks straddle node B's
// ring position censuses as two runs (plus a whole head file — three
// runs, one file). A hotspot elsewhere then triggers B's Karger–Ruhl
// balance move; B leaves, its old arc merges into its successor's, and
// the cluster census must show the file healing to a single run — the
// locality score improves because of a balance round, measured live
// rather than in the §5 simulator.
func TestCensusLocalityImprovesAfterBalance(t *testing.T) {
	ctx := context.Background()
	opts := fastOptions()
	opts.CensusInterval = 50 * time.Millisecond
	opts.HistoryInterval = 50 * time.Millisecond
	opts.PointerStabilization = 150 * time.Millisecond

	// Only the third node balances, so exactly one node (B) can ever
	// move and the straddled boundary we craft below is guaranteed to be
	// the one that heals.
	var nodes []*d2.Node
	for i := 0; i < 3; i++ {
		o := opts
		if i == 2 {
			o.BalanceInterval = 300 * time.Millisecond
		}
		seed := ""
		if i > 0 {
			seed = nodes[0].Addr()
		}
		n, err := d2.StartNode(ctx, "127.0.0.1:0", seed, o)
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		nodes = append(nodes, n)
	}
	time.Sleep(500 * time.Millisecond)

	client, err := d2.ConnectTCP([]string{nodes[0].Addr(), nodes[1].Addr()}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ids := []keys.Key{nodes[0].ID(), nodes[1].ID(), nodes[2].ID()}
	bID := nodes[2].ID()
	volLabel := bID.Short() // the witness volume below reuses B's first 20 bytes

	// The witness file: 64 consecutive blocks numbered around B's own
	// block field, sharing B's first 52 bytes — so its key interval
	// straddles B exactly, splitting the file between B and B's
	// successor. A small whole head file (block 0) in the same volume
	// supplies the census file count.
	m := binary.BigEndian.Uint64(bID[52:60])
	if m < 64 || m > ^uint64(0)-64 {
		t.Fatalf("node ID block field %d too close to the edge for a straddle", m)
	}
	payload := make([]byte, 256)
	for i := uint64(0); i < 64; i++ {
		if err := client.Put(ctx, censusFileKey(bID, m-31+i), payload); err != nil {
			t.Fatal(err)
		}
	}
	var headPrefix keys.Key
	copy(headPrefix[:20], bID[:20])
	for b := uint64(0); b < 4; b++ {
		if err := client.Put(ctx, censusFileKey(headPrefix, b), payload); err != nil {
			t.Fatal(err)
		}
	}

	// The straddle must be visible before the balancer runs: volume =
	// 68 blocks, 1 file (the head), 3 runs (head + the two body halves).
	runsBefore := waitVolumeRuns(t, ctx, client, volLabel, 68, 3, 10*time.Second,
		"initial straddled layout")
	t.Logf("before balance: volume %s runs=%d (straddles node %s)", volLabel, runsBefore, bID.Short())

	// The hotspot: one 4 MiB file owned by a non-balancing node. B's
	// probe finds it (4 MiB against B's ~17 KiB clears the t=4
	// threshold), B rejoins at the hotspot's median, and B's old
	// boundary — the one splitting the witness file — disappears.
	var hot keys.Key
	for i := 0; ; i++ {
		hot = keys.HashString(fmt.Sprintf("census-hot-%d", i))
		if !censusOwner(ids, hot).Equal(bID) {
			break
		}
	}
	hotPayload := make([]byte, 16<<10)
	for b := uint64(0); b < 256; b++ {
		if err := client.Put(ctx, censusFileKey(hot, b), hotPayload); err != nil {
			t.Fatal(err)
		}
	}

	runsAfter := waitVolumeRuns(t, ctx, client, volLabel, 68, 2, 45*time.Second,
		"healed layout after the balance move")
	if runsAfter >= runsBefore {
		t.Fatalf("locality did not improve: %d runs before, %d after", runsBefore, runsAfter)
	}
	t.Logf("after balance: volume %s runs=%d", volLabel, runsAfter)

	// The move must be a real balance move, not ring churn.
	stats, err := client.ClusterStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var moves uint64
	for _, n := range stats {
		moves += n.Snapshot.Counters["d2_node_balance_moves_total"]
	}
	if moves == 0 {
		t.Fatal("census healed but no balance move was recorded")
	}

	// The mover's event log must carry the census-delta instrumentation
	// for the move, and its admin plane must serve the census document.
	srv := httptest.NewServer(nodes[2].AdminHandler())
	defer srv.Close()
	events := adminGet(t, srv, "/eventz")
	if !strings.Contains(events, "census.delta") || !strings.Contains(events, "balance.move") {
		t.Fatalf("mover /eventz lacks census.delta for the balance move:\n%s", events)
	}
	var censusDoc struct {
		PrimaryBlocks int64 `json:"primary_blocks"`
		Sweeps        int64 `json:"sweeps"`
	}
	if err := json.Unmarshal([]byte(adminGet(t, srv, "/censusz")), &censusDoc); err != nil {
		t.Fatalf("/censusz is not valid JSON: %v", err)
	}
	if censusDoc.Sweeps == 0 {
		t.Fatal("/censusz reports zero sweeps on a live node")
	}
}

// waitVolumeRuns polls the cluster census until the named volume shows
// exactly wantBlocks blocks in wantRuns runs, and returns the run count.
func waitVolumeRuns(t *testing.T, ctx context.Context, client *d2.Client, vol string, wantBlocks, wantRuns int64, timeout time.Duration, what string) int64 {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var last string
	for time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		_, cluster, err := client.ClusterCensus(ctx)
		if err != nil {
			last = err.Error()
			continue
		}
		for _, v := range cluster.Volumes {
			if v.Volume != vol {
				continue
			}
			last = fmt.Sprintf("blocks=%d files=%d runs=%d", v.Blocks, v.Files, v.Runs)
			if v.Blocks == wantBlocks && v.Runs == wantRuns {
				return v.Runs
			}
		}
	}
	t.Fatalf("%s never appeared: want volume %s with %d blocks in %d runs, last saw: %s",
		what, vol, wantBlocks, wantRuns, last)
	return 0
}

// adminGet fetches one admin-plane path and returns the body.
func adminGet(t *testing.T, srv *httptest.Server, path string) string {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	return string(body)
}
