package d2_test

// BenchmarkStreamRead measures the streaming read path end to end over
// real TCP sockets: a 9-node ring serves a 64 MB file to three readers —
// the windowed-readahead stream, the batched whole-file read it must not
// fall behind, and a single-segment read whose latency bounds the
// stream's time to first byte.
//
// With D2_BENCH_STREAM=<file> the run writes a JSON report ({ttfb_ms,
// sustained_mbps, wholefile_mbps, single_segment_ms, window_trajectory,
// stalls}) for `d2bench -stream` to embed in BENCH_5.json.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"sort"
	"strconv"
	"testing"
	"time"

	d2 "github.com/defragdht/d2"
)

const oneSegmentBytes = 128 << 10 // SegmentBlocks * BlockSize

// streamBenchMB is the benchmark file size (the acceptance run uses the
// 64 MB default; D2_BENCH_STREAM_MB overrides for quick iteration).
func streamBenchMB() int {
	if s := os.Getenv("D2_BENCH_STREAM_MB"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 64
}

// streamBenchReport is the D2_BENCH_STREAM JSON document.
type streamBenchReport struct {
	FileMB           int     `json:"file_mb"`
	TTFBMs           float64 `json:"ttfb_ms"`
	SustainedMBps    float64 `json:"sustained_mbps"`
	WholeFileMBps    float64 `json:"wholefile_mbps"`
	SingleSegmentMs  float64 `json:"single_segment_ms"`
	Stalls           int     `json:"stalls"`
	WastedBlocks     int     `json:"wasted_blocks"`
	WindowTrajectory []int   `json:"window_trajectory"`
}

func BenchmarkStreamRead(b *testing.B) {
	ctx := context.Background()
	opts := d2.NodeOptions{
		Replicas:          3,
		StabilizeInterval: 20 * time.Millisecond,
		// Quiet repair: the bench kills no nodes, and a busy repair
		// sweep over 3 replicas of the payload is pure timing noise.
		RepairInterval: 10 * time.Second,
	}
	var nodes []*d2.Node
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	for i := 0; i < 9; i++ {
		seed := ""
		if i > 0 {
			seed = nodes[0].Addr()
		}
		n, err := d2.StartNode(ctx, "127.0.0.1:0", seed, opts)
		if err != nil {
			b.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	time.Sleep(500 * time.Millisecond) // let the ring stabilize

	client, err := d2.ConnectTCP([]string{nodes[0].Addr(), nodes[8].Addr()}, 3)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	_, priv, err := d2.GenerateKey()
	if err != nil {
		b.Fatal(err)
	}
	// A one-byte read-cache cap forces every mode onto the network, so
	// the comparison is transfer paths, not cache hits.
	vol, err := client.CreateVolume(ctx, "streambench", priv, d2.VolumeOptions{
		ReadCacheBytes: 1,
	})
	if err != nil {
		b.Fatal(err)
	}

	sizeMB := streamBenchMB()
	sizeBytes := int64(sizeMB) << 20
	payload := make([]byte, sizeBytes)
	rng := rand.New(rand.NewPCG(3, 5))
	for i := range payload {
		payload[i] = byte(rng.Uint64())
	}
	w, err := vol.WriteStream(ctx, "/big.bin")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := w.Write(payload); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	if err := vol.WriteFile(ctx, "/seg.bin", payload[:oneSegmentBytes]); err != nil {
		b.Fatal(err)
	}
	if err := vol.Sync(ctx); err != nil {
		b.Fatal(err)
	}

	// Warm pass: one open-and-taste plus one segment read, so the timed
	// modes measure the transfer paths with warm lookup caches, not the
	// first-contact metadata walk.
	{
		r, err := vol.ReadStream(ctx, "/big.bin")
		if err != nil {
			b.Fatal(err)
		}
		one := make([]byte, 1)
		if _, err := r.Read(one); err != nil {
			b.Fatal(err)
		}
		if err := r.Close(); err != nil {
			b.Fatal(err)
		}
		if _, err := vol.ReadFile(ctx, "/seg.bin"); err != nil {
			b.Fatal(err)
		}
	}

	var rep streamBenchReport
	rep.FileMB = sizeMB

	b.Run("mode=stream", func(b *testing.B) {
		b.SetBytes(sizeBytes)
		for i := 0; i < b.N; i++ {
			r, err := vol.ReadStream(ctx, "/big.bin")
			if err != nil {
				b.Fatal(err)
			}
			n, err := io.Copy(io.Discard, r)
			if cerr := r.Close(); err == nil {
				err = cerr
			}
			if err != nil || n != sizeBytes {
				b.Fatalf("stream read = (%d, %v)", n, err)
			}
			st := r.(d2.StatStream).Stats()
			rep.SustainedMBps = st.MBps()
			rep.Stalls = st.Stalls
			rep.WastedBlocks = st.WastedBlocks
			rep.WindowTrajectory = st.WindowTrajectory
		}
		b.StopTimer()
		// TTFB is its own experiment: the median over several
		// open→first-byte→close cycles, like mode=segment's median.
		var ttfbs []time.Duration
		one := make([]byte, 1)
		for j := 0; j < 9; j++ {
			r, err := vol.ReadStream(ctx, "/big.bin")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := r.Read(one); err != nil {
				b.Fatal(err)
			}
			if err := r.Close(); err != nil {
				b.Fatal(err)
			}
			ttfbs = append(ttfbs, r.(d2.StatStream).Stats().TTFB)
		}
		sort.Slice(ttfbs, func(i, j int) bool { return ttfbs[i] < ttfbs[j] })
		rep.TTFBMs = float64(ttfbs[len(ttfbs)/2]) / float64(time.Millisecond)
		b.StartTimer()
		b.ReportMetric(rep.TTFBMs, "ttfb-ms")
		b.ReportMetric(rep.SustainedMBps, "stream-MB/s")
	})

	b.Run("mode=wholefile", func(b *testing.B) {
		b.SetBytes(sizeBytes)
		var elapsed time.Duration
		for i := 0; i < b.N; i++ {
			start := time.Now()
			data, err := vol.ReadFile(ctx, "/big.bin")
			elapsed = time.Since(start)
			if err != nil || int64(len(data)) != sizeBytes {
				b.Fatalf("whole-file read = (%d, %v)", len(data), err)
			}
		}
		rep.WholeFileMBps = float64(sizeMB) / elapsed.Seconds()
		b.ReportMetric(rep.WholeFileMBps, "wholefile-MB/s")
	})

	b.Run("mode=segment", func(b *testing.B) {
		// Median of a fixed sample set per iteration: a single read's
		// latency is too noisy to serve as the TTFB acceptance bound.
		var samples []time.Duration
		for i := 0; i < b.N; i++ {
			samples = samples[:0]
			for j := 0; j < 16; j++ {
				start := time.Now()
				data, err := vol.ReadFile(ctx, "/seg.bin")
				samples = append(samples, time.Since(start))
				if err != nil || len(data) != oneSegmentBytes {
					b.Fatalf("segment read = (%d, %v)", len(data), err)
				}
			}
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		rep.SingleSegmentMs = float64(samples[len(samples)/2]) / float64(time.Millisecond)
		b.ReportMetric(rep.SingleSegmentMs, "segment-ms")
	})

	if path := os.Getenv("D2_BENCH_STREAM"); path != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "stream report written to %s\n", path)
	}
}
