package d2_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	d2 "github.com/defragdht/d2"
	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/obs"
	"github.com/defragdht/d2/internal/obs/history"
)

// --- strict Prometheus exposition parsing -------------------------------

var (
	typeLineRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	sampleLineRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{([^}]*)\})? (\S+)$`)
	labelPairRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"$`)
)

// promHist accumulates one histogram labelset's samples during parsing.
type promHist struct {
	les      []float64 // le bound of each bucket, in order of appearance
	cumCount []uint64
	sum      float64
	hasSum   bool
	count    uint64
	hasCount bool
}

// promDoc is a fully parsed exposition document.
type promDoc struct {
	types    map[string]string  // base name -> counter|gauge|histogram
	counters map[string]float64 // full series key -> value
	gauges   map[string]float64 // full series key -> value
	hists    map[string]*promHist
}

// seriesKey rebuilds the registry-style key `name{labels}` from a parsed
// sample line.
func seriesKey(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// parseProm parses a Prometheus text exposition strictly: every line must
// be a well-formed TYPE header or sample, each base name gets exactly one
// TYPE header which precedes all its samples, label pairs are well-formed,
// and values parse as floats. Histogram invariants (cumulative buckets,
// ascending le, terminal +Inf, _count == +Inf bucket) are checked after
// the scan.
func parseProm(t *testing.T, text string) *promDoc {
	t.Helper()
	doc := &promDoc{
		types:    map[string]string{},
		counters: map[string]float64{},
		gauges:   map[string]float64{},
		hists:    map[string]*promHist{},
	}
	// closed marks base names whose sample block has ended (a later TYPE
	// header started a new family): strict ordering means no samples may
	// appear for them again.
	closed := map[string]bool{}
	lastBase := ""
	for i, line := range strings.Split(text, "\n") {
		lineNo := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			m := typeLineRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed comment %q", lineNo, line)
			}
			name, typ := m[1], m[2]
			if _, dup := doc.types[name]; dup {
				t.Fatalf("line %d: duplicate # TYPE for %s", lineNo, name)
			}
			doc.types[name] = typ
			if lastBase != "" {
				closed[lastBase] = true
			}
			lastBase = name
			continue
		}
		m := sampleLineRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed sample %q", lineNo, line)
		}
		name, labels, valStr := m[1], m[2], m[3]
		for _, pair := range splitLabelPairs(labels) {
			if !labelPairRe.MatchString(pair) {
				t.Fatalf("line %d: malformed label pair %q in %q", lineNo, pair, line)
			}
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", lineNo, valStr, err)
		}

		// Resolve the sample to its declared family.
		base, suffix := name, ""
		if doc.types[base] == "" {
			for _, sfx := range []string{"_bucket", "_sum", "_count"} {
				trimmed := strings.TrimSuffix(name, sfx)
				if trimmed != name && doc.types[trimmed] == "histogram" {
					base, suffix = trimmed, sfx
					break
				}
			}
		}
		typ, ok := doc.types[base]
		if !ok {
			t.Fatalf("line %d: sample %q has no preceding # TYPE", lineNo, name)
		}
		if base != lastBase {
			t.Fatalf("line %d: sample for %s after its family block closed", lineNo, base)
		}
		if closed[base] {
			t.Fatalf("line %d: family %s re-opened", lineNo, base)
		}

		switch typ {
		case "counter":
			if val < 0 {
				t.Fatalf("line %d: negative counter %q", lineNo, line)
			}
			doc.counters[seriesKey(name, labels)] = val
		case "gauge":
			doc.gauges[seriesKey(name, labels)] = val
		case "histogram":
			if suffix == "" {
				t.Fatalf("line %d: bare sample %q for histogram %s", lineNo, name, base)
			}
			inner, le, hasLE := extractLE(labels)
			key := seriesKey(base, inner)
			h := doc.hists[key]
			if h == nil {
				h = &promHist{}
				doc.hists[key] = h
			}
			switch suffix {
			case "_bucket":
				if !hasLE {
					t.Fatalf("line %d: bucket without le label: %q", lineNo, line)
				}
				leVal := plusInf
				if le != "+Inf" {
					leVal, err = strconv.ParseFloat(le, 64)
					if err != nil {
						t.Fatalf("line %d: bad le %q", lineNo, le)
					}
				}
				h.les = append(h.les, leVal)
				h.cumCount = append(h.cumCount, uint64(val))
			case "_sum":
				if h.hasSum {
					t.Fatalf("line %d: duplicate _sum for %s", lineNo, key)
				}
				h.sum, h.hasSum = val, true
			case "_count":
				if h.hasCount {
					t.Fatalf("line %d: duplicate _count for %s", lineNo, key)
				}
				h.count, h.hasCount = uint64(val), true
			}
		}
	}

	for key, h := range doc.hists {
		if len(h.les) == 0 || !h.hasSum || !h.hasCount {
			t.Fatalf("histogram %s incomplete: %d buckets, sum=%v count=%v",
				key, len(h.les), h.hasSum, h.hasCount)
		}
		for i := 1; i < len(h.les); i++ {
			if h.les[i] <= h.les[i-1] {
				t.Fatalf("histogram %s: le bounds not ascending at bucket %d", key, i)
			}
			if h.cumCount[i] < h.cumCount[i-1] {
				t.Fatalf("histogram %s: bucket counts not cumulative at %d", key, i)
			}
		}
		if h.les[len(h.les)-1] != plusInf {
			t.Fatalf("histogram %s: last bucket is not le=\"+Inf\"", key)
		}
		if h.cumCount[len(h.cumCount)-1] != h.count {
			t.Fatalf("histogram %s: +Inf bucket %d != _count %d",
				key, h.cumCount[len(h.cumCount)-1], h.count)
		}
	}
	return doc
}

// plusInf avoids importing math for one constant.
var plusInf = func() float64 { v, _ := strconv.ParseFloat("+Inf", 64); return v }()

// splitLabelPairs splits an inner label list on commas. Registry label
// values never contain commas or escapes (enforced by the strict pair
// regex afterwards).
func splitLabelPairs(labels string) []string {
	if labels == "" {
		return nil
	}
	return strings.Split(labels, ",")
}

// extractLE removes the le label from a bucket's label list, returning
// the remaining inner list and the le value.
func extractLE(labels string) (inner, le string, ok bool) {
	var kept []string
	for _, pair := range splitLabelPairs(labels) {
		if v, found := strings.CutPrefix(pair, `le="`); found {
			le, ok = strings.TrimSuffix(v, `"`), true
			continue
		}
		kept = append(kept, pair)
	}
	return strings.Join(kept, ","), le, ok
}

// TestMetricsExpositionStrict boots a 2-node ring, drives client traffic
// through it, and strictly parses the full /metrics exposition of an
// instrumented node: every line well-formed, one TYPE header per family
// preceding its samples, histogram buckets cumulative and +Inf-terminated.
// It then round-trips the node's frozen /statsz snapshot through
// WritePrometheus and checks the parsed values match the snapshot exactly.
func TestMetricsExpositionStrict(t *testing.T) {
	ctx := context.Background()
	n1, err := d2.StartNode(ctx, "127.0.0.1:0", "", fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := d2.StartNode(ctx, "127.0.0.1:0", n1.Addr(), fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	time.Sleep(200 * time.Millisecond)

	client, err := d2.ConnectTCP([]string{n1.Addr()}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	_, priv, _ := d2.GenerateKey()
	vol, err := client.CreateVolume(ctx, "expovol", priv, d2.VolumeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := vol.WriteFile(ctx, "/f.bin", bytes.Repeat([]byte("x"), 64<<10)); err != nil {
		t.Fatal(err)
	}
	if err := vol.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	// A streamed read populates the d2_stream_* family on the client side
	// and batched serve metrics on the nodes.
	r, err := vol.ReadStream(ctx, "/f.bin")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, r); err != nil {
		t.Fatal(err)
	}
	r.Close()

	srv := httptest.NewServer(n1.AdminHandler())
	defer srv.Close()
	get := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		return string(body)
	}

	doc := parseProm(t, get("/metrics"))
	// The live node must expose all three families with real content: node
	// storage gauges, labeled RPC counters, and latency histograms.
	for series, typ := range map[string]string{
		"d2_node_store_bytes":     "gauge",
		"d2_rpc_server_total":     "counter",
		"d2_tcp_wire_bytes_total": "counter",
	} {
		if doc.types[series] != typ {
			t.Fatalf("/metrics: %s is %q, want %s", series, doc.types[series], typ)
		}
	}
	if len(doc.hists) == 0 {
		t.Fatal("/metrics exposes no histograms from a node that served RPCs")
	}

	// Round-trip: freeze a snapshot, render it, parse it back, compare.
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(get("/statsz")), &snap); err != nil {
		t.Fatalf("/statsz: %v", err)
	}
	var buf bytes.Buffer
	if err := obs.WritePrometheus(&buf, snap); err != nil {
		t.Fatal(err)
	}
	rt := parseProm(t, buf.String())
	if len(rt.counters) != len(snap.Counters) {
		t.Fatalf("round-trip counters: %d parsed, %d in snapshot", len(rt.counters), len(snap.Counters))
	}
	for key, want := range snap.Counters {
		if got := rt.counters[key]; got != float64(want) {
			t.Fatalf("round-trip counter %s = %v, want %d", key, got, want)
		}
	}
	for key, want := range snap.Gauges {
		if got := rt.gauges[key]; got != float64(want) {
			t.Fatalf("round-trip gauge %s = %v, want %d", key, got, want)
		}
	}
	if len(rt.hists) != len(snap.Histograms) {
		t.Fatalf("round-trip histograms: %d parsed, %d in snapshot", len(rt.hists), len(snap.Histograms))
	}
	for key, want := range snap.Histograms {
		h := rt.hists[key]
		if h == nil {
			t.Fatalf("round-trip lost histogram %s", key)
		}
		if h.count != want.Count() || h.sum != float64(want.Sum) {
			t.Fatalf("round-trip histogram %s: count=%d sum=%v, want count=%d sum=%d",
				key, h.count, h.sum, want.Count(), want.Sum)
		}
		if len(h.les) != len(want.Bounds)+1 {
			t.Fatalf("round-trip histogram %s: %d buckets, want %d", key, len(h.les), len(want.Bounds)+1)
		}
	}
}

// TestDoctorFlagsReplicaDeficit injects a replica deficit into a 3-node
// ring (replicas=3, so every survivor of a node kill is short one
// successor) and checks the doctor path end to end: the survivors' repair
// rounds publish the deficit, their health engines degrade, and
// ClusterDoctor names the replica_deficit check against a real node.
func TestDoctorFlagsReplicaDeficit(t *testing.T) {
	ctx := context.Background()
	opts := fastOptions()
	opts.HistoryInterval = 20 * time.Millisecond

	var nodes []*d2.Node
	for i := 0; i < 3; i++ {
		seed := ""
		if i > 0 {
			seed = nodes[0].Addr()
		}
		n, err := d2.StartNode(ctx, "127.0.0.1:0", seed, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		nodes = append(nodes, n)
	}
	time.Sleep(300 * time.Millisecond)

	client, err := d2.ConnectTCP([]string{nodes[0].Addr(), nodes[1].Addr()}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for i := 0; i < 16; i++ {
		k := keys.HashString(fmt.Sprintf("deficit-block-%02d", i))
		if err := client.Put(ctx, k, bytes.Repeat([]byte("d"), 2048)); err != nil {
			t.Fatal(err)
		}
	}

	// Healthy baseline first: with all three nodes up, no replica deficit.
	report, err := client.ClusterDoctor(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if report.Nodes != 3 {
		t.Fatalf("doctor sees %d nodes, want 3", report.Nodes)
	}
	for _, p := range report.Problems {
		if p.Check == "replica_deficit" {
			t.Fatalf("healthy ring already has a deficit problem: %+v", p)
		}
	}

	// Kill one node; r=3 now cannot be satisfied by the 2 survivors, so
	// every repair round leaves a deficit and the health engines degrade.
	if err := nodes[2].Close(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(15 * time.Second)
	var lastReport d2.ClusterReport
	for {
		if time.Now().After(deadline) {
			t.Fatalf("doctor never flagged replica_deficit; last report: %+v", lastReport)
		}
		time.Sleep(100 * time.Millisecond)
		report, err := client.ClusterDoctor(ctx)
		if err != nil {
			continue // transient while the ring heals around the dead node
		}
		lastReport = report
		if report.Nodes != 2 {
			continue // dead node still in a successor list
		}
		found := false
		for _, p := range report.Problems {
			if p.Check != "replica_deficit" {
				continue
			}
			found = true
			if p.Node != nodes[0].Addr() && p.Node != nodes[1].Addr() {
				t.Fatalf("deficit problem names %q, not a survivor", p.Node)
			}
			if p.State == "ok" || p.Evidence == "" {
				t.Fatalf("deficit problem lacks verdict or evidence: %+v", p)
			}
		}
		if !found {
			continue
		}
		if report.State == "ok" {
			t.Fatalf("report has deficit problems but state ok: %+v", report)
		}
		return
	}
}

// TestFlightRecorderSlowRequest induces a slow request against a node
// running with a 1 ns slow threshold and a flight directory, then checks
// the dumped bundle is self-contained: the triggering trace's spans, the
// recent event log, the health verdict, and derived metric rates.
func TestFlightRecorderSlowRequest(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	opts := fastOptions()
	opts.HistoryInterval = 20 * time.Millisecond
	opts.TraceSlowThreshold = time.Nanosecond // every serve is "slow"
	opts.FlightDir = dir
	opts.FlightMinGap = time.Millisecond

	nd, err := d2.StartNode(ctx, "127.0.0.1:0", "", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()

	client, err := d2.ConnectTCP([]string{nd.Addr()}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Warm up first: an untraced put registers every RPC metric series,
	// and the sleep lets the sampler take post-registration samples — a
	// bundle dumped before the ring has history has no rate window.
	k := keys.HashString("flight-block")
	if err := client.Put(ctx, k, []byte("warmup")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)

	// A forced trace rides the RPC to the node, so the node-side
	// slow.request event carries the trace ID into the bundle. Earlier
	// untraced RPCs (the client bootstrap) claim the first dumps, so keep
	// issuing traced puts until a complete traced bundle lands.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("no flight bundle with a trace appeared")
		}
		sctx, root := client.StartTrace(ctx, "test.slowput")
		err := client.Put(sctx, k, []byte("slow payload"))
		root.EndErr(err)
		if err != nil {
			t.Fatal(err)
		}
		if bundle := findTracedBundle(t, dir); bundle != nil {
			checkFlightBundle(t, bundle, nd.Addr())
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// findTracedBundle scans dir for a flight bundle that recorded a traced
// slow request with a live rate window (bundles for untraced requests and
// pre-history dumps are ignored).
func findTracedBundle(t *testing.T, dir string) *history.Bundle {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		if !strings.HasPrefix(ent.Name(), "flight-") {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			continue
		}
		var b history.Bundle
		if err := json.Unmarshal(raw, &b); err != nil {
			t.Fatalf("bundle %s is not valid JSON: %v", ent.Name(), err)
		}
		if b.Trigger == "slow_request" && b.Trace != "" && len(b.Spans) > 0 &&
			len(b.Rates.Counters) > 0 {
			return &b
		}
	}
	return nil
}

// checkFlightBundle asserts a dumped bundle is the self-contained
// diagnostic document the flight recorder promises.
func checkFlightBundle(t *testing.T, b *history.Bundle, nodeAddr string) {
	t.Helper()
	if b.Node != nodeAddr {
		t.Fatalf("bundle node = %q, want %q", b.Node, nodeAddr)
	}
	// The triggering span: a node-side serve span of the traced request.
	foundServe := false
	for _, sp := range b.Spans {
		if strings.HasPrefix(sp.Name, "serve.") {
			foundServe = true
		}
	}
	if !foundServe {
		t.Fatalf("bundle spans lack the serve span: %+v", b.Spans)
	}
	// Recent events, including the slow.request that pulled the trigger.
	foundSlow := false
	for _, ev := range b.Events {
		if ev.Name == "slow.request" {
			foundSlow = true
		}
	}
	if !foundSlow {
		t.Fatal("bundle events lack the slow.request entry")
	}
	// Metric deltas: the health engine took a fresh sample at dump time,
	// so the served RPC shows up in the rates document.
	if b.Health.State == "" || len(b.Health.Checks) == 0 {
		t.Fatalf("bundle health incomplete: %+v", b.Health)
	}
	if len(b.Rates.Counters) == 0 {
		t.Fatal("bundle rates carry no counter deltas")
	}
}
